"""IEEE 802.11 DCF: RTS/CTS/DATA/ACK unicast, NAV, broadcast."""

import pytest

from repro.mac.dot11 import Dot11Config
from repro.sim.units import MS, US

from tests.conftest import CHAIN, TRIANGLE, collect_upper, make_dot11_testbed


def test_reliable_unicast_full_handshake():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    rx1 = collect_upper(tb.macs[1])
    outcomes = []
    tb.macs[0].send_reliable((1,), "uni", 500, on_complete=outcomes.append)
    tb.run(50 * MS)
    assert rx1 == [("uni", 0)]
    assert outcomes[0].acked == (1,) and not outcomes[0].dropped
    stats = tb.macs[0].stats
    assert stats.frames_tx.get("RtsFrame") == 1
    assert stats.packets_delivered == 1
    assert tb.macs[1].stats.frames_tx.get("CtsFrame") == 1
    assert tb.macs[1].stats.frames_tx.get("AckFrame") == 1


def test_handshake_sifs_timing():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1, trace=True)
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "uni", 100))
    tb.run(50 * MS)
    starts = [e for e in tb.tracer.events if e.kind == "tx-start"]
    rts, cts, data, ack = starts[:4]
    phy = tb.phy
    # CTS starts one SIFS after the RTS arrives (plus propagation).
    assert cts.time - (rts.time + phy.frame_airtime(20)) == pytest.approx(
        phy.sifs, abs=1 * US)
    assert ack.time > data.time


def test_reliable_multicast_rejected():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    with pytest.raises(ValueError):
        tb.macs[0].send_reliable((1, 2), "multi", 100)


def test_unicast_retry_and_drop_when_unreachable():
    tb = make_dot11_testbed([(0, 0), (500, 0)], protocol="dot11", seed=1,
                            config=Dot11Config(retry_limit=2))
    outcomes = []
    tb.macs[0].send_reliable((1,), "lost", 100, on_complete=outcomes.append)
    tb.run(200 * MS)
    assert outcomes[0].dropped
    stats = tb.macs[0].stats
    assert stats.packets_dropped == 1
    assert stats.frames_tx.get("RtsFrame") == 3  # initial + 2 retries
    assert stats.retransmissions == 2


def test_unreliable_broadcast_reaches_all(triangle=TRIANGLE):
    tb = make_dot11_testbed(triangle, protocol="dot11", seed=1)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_unreliable(-1, "hello", 13)
    tb.run(10 * MS)
    assert rx1 == [("hello", 0)] and rx2 == [("hello", 0)]


def test_nav_defers_third_party():
    """Node 2 (in range of both) overhears the RTS and defers via NAV."""
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1, trace=True)
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "uni", 1000))
    # 2 queues a broadcast right after the RTS goes out.
    tb.sim.at(1 * MS + 210 * US, lambda: tb.macs[2].send_unreliable(-1, "b", 50))
    tb.run(100 * MS)
    starts = [e for e in tb.tracer.events if e.kind == "tx-start"]
    ack_end = [e for e in tb.tracer.events if e.kind == "tx-end"
               and "ACK" in str(e.detail.get("frame", ""))]
    two_tx = [e for e in starts if e.node == 2]
    assert two_tx and ack_end
    # 2's transmission waited for the whole protected exchange.
    assert two_tx[0].time > ack_end[0].time
    assert tb.macs[0].stats.retransmissions == 0


def test_duplicate_data_suppressed_on_retransmission(monkeypatch):
    """If the ACK is lost the sender retries; the receiver re-ACKs but
    delivers once."""
    from repro.mac.dot11 import Dot11Dcf

    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    rx1 = collect_upper(tb.macs[1])
    dropped = []
    original = Dot11Dcf._handle_ack

    def drop_first_ack(self, frame):
        if self.node_id == 0 and not dropped:
            dropped.append(frame)
            return
        original(self, frame)

    monkeypatch.setattr(Dot11Dcf, "_handle_ack", drop_first_ack)
    outcomes = []
    tb.macs[0].send_reliable((1,), "dup?", 300, on_complete=outcomes.append)
    tb.run(200 * MS)
    assert rx1 == [("dup?", 0)]  # delivered exactly once
    assert outcomes[0].acked == (1,)
    assert tb.macs[0].stats.retransmissions == 1


def test_hidden_terminal_rts_cts_helps():
    """In the 0-1-2 chain, 2 hears 1's CTS and defers."""
    tb = make_dot11_testbed(CHAIN[:3], protocol="dot11", seed=4)
    rx1 = collect_upper(tb.macs[1])
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "pkt", 1000))
    tb.sim.at(2 * MS, lambda: tb.macs[2].send_unreliable(-1, "x", 1000))
    tb.run(100 * MS)
    assert ("pkt", 0) in rx1
