"""LAMM: BMMM with a location-covered RTS/CTS phase."""

import pytest

from repro.mac.lamm import LammProtocol, covering_subset
from repro.sim.units import MS

from tests.conftest import collect_upper, make_dot11_testbed


class TestCoveringSubset:
    def test_empty(self):
        assert covering_subset([], 10) == []

    def test_single(self):
        assert covering_subset([(0, 0)], 10) == [0]

    def test_cluster_covered_by_one(self):
        positions = [(0, 0), (3, 0), (0, 4), (2, 2)]
        chosen = covering_subset(positions, cover_radius=10)
        assert len(chosen) == 1

    def test_spread_needs_everyone(self):
        positions = [(0, 0), (100, 0), (0, 100)]
        chosen = covering_subset(positions, cover_radius=10)
        assert chosen == [0, 1, 2]

    def test_cover_property_holds(self):
        import math
        import random

        rng = random.Random(4)
        positions = [(rng.uniform(0, 80), rng.uniform(0, 80)) for _ in range(12)]
        radius = 25.0
        chosen = covering_subset(positions, radius)
        for i, p in enumerate(positions):
            assert any(math.dist(p, positions[j]) <= radius for j in chosen)

    def test_zero_radius_degenerates_to_all(self):
        positions = [(0, 0), (1, 1)]
        assert covering_subset(positions, 0) == [0, 1]

    def test_deterministic(self):
        positions = [(0, 0), (30, 0), (60, 0), (90, 0)]
        assert covering_subset(positions, 20) == covering_subset(positions, 20)


class TestLammProtocol:
    def test_clustered_receivers_need_one_rts(self):
        # Three receivers within a few meters of each other: one CTS
        # protects them all; the RAK phase still polls everyone.
        coords = [(0.0, 0.0), (50.0, 0.0), (52.0, 0.0), (50.0, 2.0)]
        tb = make_dot11_testbed(coords, protocol="lamm", seed=1)
        rxs = [collect_upper(tb.macs[i]) for i in (1, 2, 3)]
        outcomes = []
        tb.macs[0].send_reliable((1, 2, 3), "pkt", 500, on_complete=outcomes.append)
        tb.run(100 * MS)
        assert outcomes[0].acked == (1, 2, 3)
        assert all(rx == [("pkt", 0)] for rx in rxs)
        stats = tb.macs[0].stats
        assert stats.frames_tx.get("RtsFrame") == 1   # covered phase
        assert stats.frames_tx.get("RakFrame") == 3   # full reliability

    def test_spread_receivers_degrade_to_bmmm(self):
        coords = [(0.0, 0.0), (70.0, 0.0), (0.0, 70.0), (-70.0, 0.0)]
        tb = make_dot11_testbed(coords, protocol="lamm", seed=1)
        outcomes = []
        tb.macs[0].send_reliable((1, 2, 3), "pkt", 500, on_complete=outcomes.append)
        tb.run(200 * MS)
        assert outcomes[0].acked == (1, 2, 3)
        assert tb.macs[0].stats.frames_tx.get("RtsFrame") == 3

    def test_lower_overhead_than_bmmm_when_clustered(self):
        coords = [(0.0, 0.0), (50.0, 0.0), (52.0, 0.0), (50.0, 2.0)]
        results = {}
        for protocol in ("lamm", "bmmm"):
            tb = make_dot11_testbed(coords, protocol=protocol, seed=1)
            tb.macs[0].send_reliable((1, 2, 3), "pkt", 500)
            tb.run(100 * MS)
            results[protocol] = tb.macs[0].stats.overhead_ratio()
        assert results["lamm"] < results["bmmm"]

    def test_retry_round_recomputes_cover(self, monkeypatch):
        """A retransmission round covers only the still-pending set."""
        from repro.mac.bmmm import BmmmProtocol

        coords = [(0.0, 0.0), (50.0, 0.0), (52.0, 0.0)]
        tb = make_dot11_testbed(coords, protocol="lamm", seed=1)
        dropped = []
        original = LammProtocol._handle_rak

        def deaf_once(self, frame):
            if self.node_id == 2 and frame.receiver == 2 and not dropped:
                dropped.append(1)
                return
            original(self, frame)

        monkeypatch.setattr(LammProtocol, "_handle_rak", deaf_once)
        outcomes = []
        tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
        tb.run(300 * MS)
        assert set(outcomes[0].acked) == {1, 2}
        assert tb.macs[0].stats.retransmissions == 1


def test_lamm_runs_full_workload():
    from repro.world.network import ScenarioConfig, build_network

    config = ScenarioConfig(protocol="lamm", n_nodes=14, width=210, height=150,
                            rate_pps=8, n_packets=15, seed=5)
    summary = build_network(config).run()
    assert summary.delivery_ratio > 0.9
