"""Frame formats: sizes from the paper, wire round-trips."""

import pytest

from repro.mac.addresses import BROADCAST, MULTICAST_FLAG
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    FrameDecodeError,
    MrtsFrame,
    NakFrame,
    NctsFrame,
    RakFrame,
    RtsFrame,
    DOT11_DATA_OVERHEAD,
    RMAC_DATA_OVERHEAD,
)


class TestMrts:
    def test_size_formula(self):
        # Fig. 3: 1 + 6 + 1 + 6n + 4 = 12 + 6n bytes.
        for n in (1, 2, 5, 20):
            frame = MrtsFrame(0, tuple(range(1, n + 1)))
            assert frame.size_bytes == 12 + 6 * n

    def test_index_of_preserves_order(self):
        frame = MrtsFrame(9, (4, 2, 7))
        assert frame.index_of(4) == 0
        assert frame.index_of(2) == 1
        assert frame.index_of(7) == 2
        with pytest.raises(ValueError):
            frame.index_of(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            MrtsFrame(0, ())
        with pytest.raises(ValueError):
            MrtsFrame(0, (1, 1))
        with pytest.raises(ValueError):
            MrtsFrame(0, tuple(range(1, 257)))

    def test_wire_roundtrip(self):
        frame = MrtsFrame(12345, (1, 99, 2**40))
        data = frame.to_bytes()
        assert len(data) == frame.size_bytes
        assert MrtsFrame.from_bytes(data) == frame

    def test_corrupted_fcs_rejected(self):
        data = bytearray(MrtsFrame(1, (2,)).to_bytes())
        data[3] ^= 0xFF
        with pytest.raises(FrameDecodeError):
            MrtsFrame.from_bytes(bytes(data))

    def test_wrong_type_rejected(self):
        data = RtsFrame(1, 2).to_bytes()
        with pytest.raises(FrameDecodeError):
            MrtsFrame.from_bytes(data)


class TestControlFrames:
    @pytest.mark.parametrize(
        "cls,size",
        [(RtsFrame, 20), (CtsFrame, 14), (AckFrame, 14), (RakFrame, 14),
         (NctsFrame, 14), (NakFrame, 14)],
    )
    def test_sizes_match_paper(self, cls, size):
        assert cls(0, 1).size_bytes == size

    def test_rts_wire_roundtrip_keeps_both_addresses(self):
        frame = RtsFrame(3, 7, aux=1234)
        assert RtsFrame.from_bytes(frame.to_bytes()) == frame
        assert len(frame.to_bytes()) == frame.size_bytes

    @pytest.mark.parametrize("cls", [CtsFrame, AckFrame, RakFrame, NctsFrame, NakFrame])
    def test_response_wire_roundtrip_drops_transmitter(self, cls):
        # 14-byte responses carry only the receiver on the wire, as in
        # IEEE 802.11 (the transmitter is implied by timing).
        frame = cls(3, 7, aux=1234)
        decoded = cls.from_bytes(frame.to_bytes())
        assert (decoded.receiver, decoded.aux) == (7, 1234)
        assert decoded.transmitter == -1
        assert len(frame.to_bytes()) == frame.size_bytes

    def test_wrong_size_rejected(self):
        with pytest.raises(FrameDecodeError):
            CtsFrame.from_bytes(RtsFrame(0, 1).to_bytes())

    def test_str_rendering(self):
        assert "RTS" in str(RtsFrame(0, 1))
        assert "RAK" in str(RakFrame(0, 1))


class TestDataFrame:
    def test_rmac_size(self):
        frame = DataFrame(src=0, dst=1, seq=1, payload_bytes=500, reliable=True)
        assert frame.overhead == RMAC_DATA_OVERHEAD
        assert frame.size_bytes == 522

    def test_dot11_size(self):
        frame = DataFrame(src=0, dst=1, seq=1, payload_bytes=500, reliable=True,
                          overhead=DOT11_DATA_OVERHEAD)
        assert frame.size_bytes == 528

    def test_wire_roundtrip_including_sentinels(self):
        for dst in (5, BROADCAST, MULTICAST_FLAG):
            frame = DataFrame(src=2, dst=dst, seq=77, payload_bytes=64, reliable=False)
            decoded = DataFrame.from_bytes(frame.to_bytes())
            assert (decoded.src, decoded.dst, decoded.seq, decoded.reliable) == (
                2, dst, 77, False)
            assert decoded.payload_bytes == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            DataFrame(src=0, dst=1, seq=0, payload_bytes=-1, reliable=True)
        with pytest.raises(ValueError):
            DataFrame(src=0, dst=1, seq=0, payload_bytes=0, reliable=True, overhead=-2)

    def test_str_shows_kind(self):
        reliable = DataFrame(src=0, dst=BROADCAST, seq=1, payload_bytes=10, reliable=True)
        unreliable = DataFrame(src=0, dst=3, seq=1, payload_bytes=10, reliable=False)
        assert "RDATA" in str(reliable) and "BCAST" in str(reliable)
        assert "UDATA" in str(unreliable)
