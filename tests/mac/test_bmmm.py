"""BMMM: the batch RTS/CTS x n, DATA, RAK/ACK x n transaction."""

import pytest

from repro.mac.bmmm import BmmmProtocol
from repro.mac.dot11 import Dot11Config
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_dot11_testbed


def test_batch_round_structure():
    """One contention phase: n RTS/CTS pairs, one DATA, n RAK/ACK pairs."""
    tb = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1, trace=True)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "batch", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert rx1 == [("batch", 0)] and rx2 == [("batch", 0)]
    assert outcomes[0].acked == (1, 2)
    stats = tb.macs[0].stats
    assert stats.frames_tx.get("RtsFrame") == 2
    assert stats.frames_tx.get("RakFrame") == 2
    assert stats.frames_tx.get("RDATA") == 1
    assert tb.macs[1].stats.frames_tx.get("CtsFrame") == 1
    assert tb.macs[1].stats.frames_tx.get("AckFrame") == 1
    # Frame order on the air: RTS CTS RTS CTS DATA RAK ACK RAK ACK.
    kinds = [str(e.detail.get("frame", "")).split("(")[0]
             for e in tb.tracer.events if e.kind == "tx-start"]
    assert kinds == ["RTS", "CTS", "RTS", "CTS", "RDATA", "RAK", "ACK", "RAK", "ACK"]


def test_missing_cts_receiver_retried(monkeypatch):
    """A receiver whose CTS phase fails stays pending for the next round
    (unless its ACK arrives anyway via the RAK -- here we block both)."""
    dropped = []
    original_rts = BmmmProtocol._handle_rts
    original_rak = BmmmProtocol._handle_rak

    def deaf_rts(self, frame):
        if self.node_id == 2 and frame.receiver == 2 and "rts" not in dropped:
            dropped.append("rts")
            return
        original_rts(self, frame)

    def deaf_rak(self, frame):
        if self.node_id == 2 and frame.receiver == 2 and "rak" not in dropped:
            dropped.append("rak")
            return
        original_rak(self, frame)

    monkeypatch.setattr(BmmmProtocol, "_handle_rts", deaf_rts)
    monkeypatch.setattr(BmmmProtocol, "_handle_rak", deaf_rak)
    tb = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1)
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(300 * MS)
    assert outcomes[0].acked and set(outcomes[0].acked) == {1, 2}
    assert tb.macs[0].stats.retransmissions == 1  # one extra round for node 2


def test_unreachable_receiver_drops_after_rounds():
    tb = make_dot11_testbed([(0, 0), (50, 0), (500, 0)], protocol="bmmm",
                            seed=1, config=Dot11Config(retry_limit=2))
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 300, on_complete=outcomes.append)
    tb.run(400 * MS)
    assert outcomes[0].dropped
    assert outcomes[0].acked == (1,)
    assert outcomes[0].failed == (2,)
    assert tb.macs[0].stats.packets_dropped == 1


def test_no_cts_receiver_still_acked_if_data_heard(monkeypatch):
    """Design note: the sender RAKs even no-CTS receivers; if the data got
    through anyway the ACK completes the receiver in the same round."""
    original_rts = BmmmProtocol._handle_rts
    blocked = []

    def deaf_rts(self, frame):
        if self.node_id == 2:
            blocked.append(1)
            return  # never CTS
        original_rts(self, frame)

    monkeypatch.setattr(BmmmProtocol, "_handle_rts", deaf_rts)
    tb = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1)
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert outcomes[0].acked and 2 in outcomes[0].acked
    assert rx2 == [("pkt", 0)]
    assert tb.macs[0].stats.retransmissions == 0


def test_unreliable_broadcast():
    tb = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1)
    rx1 = collect_upper(tb.macs[1])
    tb.macs[0].send_unreliable(-1, "hello", 13)
    tb.run(10 * MS)
    assert rx1 == [("hello", 0)]
    assert tb.macs[0].stats.unreliable_sent == 1


def test_control_overhead_dwarfs_rmac():
    """Sanity: BMMM's per-packet control airtime is far larger than
    RMAC's for the same workload (the paper's Fig. 11 driver)."""
    from tests.conftest import make_rmac_testbed

    tb_b = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1)
    tb_r = make_rmac_testbed(TRIANGLE, seed=1)
    for tb in (tb_b, tb_r):
        tb.macs[0].send_reliable((1, 2), "pkt", 500)
        tb.run(100 * MS)
    overhead_b = tb_b.macs[0].stats.overhead_ratio()
    overhead_r = tb_r.macs[0].stats.overhead_ratio()
    assert overhead_b > 3 * overhead_r
