"""The CW/BI state of Section 3.3.1."""

import random

import pytest

from repro.mac.backoff import Backoff


def test_draw_within_window():
    backoff = Backoff(random.Random(1), cw_min=31, cw_max=1023)
    for _ in range(200):
        assert 0 <= backoff.draw() <= backoff.cw


def test_decrement_clamps_at_zero():
    backoff = Backoff(random.Random(1))
    backoff.bi = 1
    backoff.decrement()
    assert backoff.bi == 0 and backoff.expired
    backoff.decrement()
    assert backoff.bi == 0


def test_cw_doubles_exponentially_and_saturates():
    backoff = Backoff(random.Random(1), cw_min=31, cw_max=1023)
    expected = [63, 127, 255, 511, 1023, 1023]
    seen = []
    for _ in expected:
        backoff.double_cw()
        seen.append(backoff.cw)
    assert seen == expected


def test_reset_cw():
    backoff = Backoff(random.Random(1), cw_min=31, cw_max=1023)
    backoff.double_cw()
    backoff.reset_cw()
    assert backoff.cw == 31


def test_draw_uses_current_cw():
    backoff = Backoff(random.Random(3), cw_min=3, cw_max=1023)
    draws_small = {backoff.draw() for _ in range(100)}
    assert max(draws_small) <= 3
    for _ in range(5):
        backoff.double_cw()
    draws_large = [backoff.draw() for _ in range(100)]
    assert max(draws_large) > 3


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        Backoff(random.Random(1), cw_min=-1)
    with pytest.raises(ValueError):
        Backoff(random.Random(1), cw_min=31, cw_max=15)


def test_draw_counter():
    backoff = Backoff(random.Random(1))
    backoff.draw()
    backoff.draw()
    assert backoff.draws == 2
