"""The 802.11MX-style receiver-initiated NAK-tone protocol."""

import pytest

from repro.mac.dot11 import Dot11Config
from repro.mac.mx import MxProtocol
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_dot11_testbed


def test_silence_means_success():
    tb = make_dot11_testbed(TRIANGLE, protocol="mx", seed=1)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert rx1 == [("pkt", 0)] and rx2 == [("pkt", 0)]
    assert outcomes[0].acked == (1, 2)
    assert tb.macs[0].stats.retransmissions == 0
    # No frames from the receivers at all: feedback is the (absent) tone.
    assert not tb.macs[1].stats.frames_tx
    assert not tb.macs[2].stats.frames_tx


def test_corrupted_copy_draws_nak_tone_and_retransmission(monkeypatch):
    original = MxProtocol._handle_reliable_data
    state = {"corrupted": False}

    def corrupt_once(self, frame):
        if self.node_id == 2 and not state["corrupted"]:
            state["corrupted"] = True
            self.on_frame_error(frame.src)
            return
        original(self, frame)

    monkeypatch.setattr(MxProtocol, "_handle_reliable_data", corrupt_once)
    tb = make_dot11_testbed(TRIANGLE, protocol="mx", seed=1)
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(300 * MS)
    assert tb.macs[0].stats.retransmissions >= 1
    assert rx2 == [("pkt", 0)]
    assert outcomes[0].acked == (1, 2)


def test_missed_announcement_is_silent_loss(monkeypatch):
    """The reliability gap Section 2 describes: a receiver that missed the
    announcement never NAKs, and the sender reports success."""
    original = MxProtocol.on_frame_received

    def deaf_to_mrts(self, frame, sender):
        from repro.mac.frames import MrtsFrame

        if self.node_id == 2 and isinstance(frame, MrtsFrame):
            return
        original(self, frame, sender)

    monkeypatch.setattr(MxProtocol, "on_frame_received", deaf_to_mrts)
    tb = make_dot11_testbed(TRIANGLE, protocol="mx", seed=1)
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert outcomes[0].acked == (1, 2)  # false success
    assert rx2 == []
    assert tb.macs[0].stats.retransmissions == 0


def test_announcement_without_data_naks(monkeypatch):
    """If the data never follows the announcement, receivers NAK on the
    expectation timeout and the sender retries."""
    tb = make_dot11_testbed(TRIANGLE, protocol="mx", seed=1)
    # Suppress the sender's first data transmission.
    state = {"skipped": False}
    original = MxProtocol._on_announce_sent

    def skip_data_once(self, frame, aborted):
        if not state["skipped"]:
            state["skipped"] = True
            # Pretend the data went out; watch a window wide enough to
            # catch the receivers' expectation-timeout NAK (~16 us in).
            self._phase = "nak-window"
            self._nak_check_start = self.sim.now
            self._nak_timer.start(self.NAK_WINDOW + 40 * US)
            return
        original(self, frame, aborted)

    monkeypatch.setattr(MxProtocol, "_on_announce_sent", skip_data_once)
    rx1 = collect_upper(tb.macs[1])
    tb.macs[0].send_reliable((1, 2), "pkt", 500)
    tb.run(300 * MS)
    assert tb.macs[0].stats.retransmissions >= 1
    assert rx1 == [("pkt", 0)]


def test_drop_after_persistent_naks(monkeypatch):
    original = MxProtocol._handle_reliable_data

    def always_corrupt(self, frame):
        if self.node_id == 2:
            self.on_frame_error(frame.src)
            return
        original(self, frame)

    monkeypatch.setattr(MxProtocol, "_handle_reliable_data", always_corrupt)
    tb = make_dot11_testbed(TRIANGLE, protocol="mx", seed=1,
                            config=Dot11Config(retry_limit=2))
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 300, on_complete=outcomes.append)
    tb.run(300 * MS)
    assert outcomes[0].dropped
    assert tb.macs[0].stats.packets_dropped == 1
