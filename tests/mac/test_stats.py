"""Per-node MAC counters and ratio definitions."""

import pytest

from repro.mac.stats import MacStats


def test_ratios_undefined_without_traffic():
    stats = MacStats(node_id=1)
    assert stats.drop_ratio() is None
    assert stats.retransmission_ratio() is None
    assert stats.overhead_ratio() is None
    assert stats.abort_ratio() is None


def test_drop_and_retx_ratios():
    stats = MacStats(node_id=1)
    stats.packets_offered = 20
    stats.packets_dropped = 1
    stats.retransmissions = 5
    assert stats.drop_ratio() == pytest.approx(0.05)
    assert stats.retransmission_ratio() == pytest.approx(0.25)


def test_overhead_ratio_definition():
    """R_txoh = (control tx + control rx + ABT checking) / data tx time."""
    stats = MacStats(node_id=1)
    stats.control_tx_time = 300
    stats.control_rx_time = 100
    stats.abt_check_time = 100
    stats.data_tx_time = 2000
    assert stats.overhead_ratio() == pytest.approx(0.25)


def test_abort_ratio_definition():
    stats = MacStats(node_id=1)
    stats.mrts_transmissions = 200
    stats.mrts_aborted = 3
    assert stats.abort_ratio() == pytest.approx(0.015)


def test_frame_counting():
    stats = MacStats(node_id=1)
    stats.count_tx("MRTS")
    stats.count_tx("MRTS")
    stats.count_rx("RDATA")
    assert stats.frames_tx == {"MRTS": 2}
    assert stats.frames_rx == {"RDATA": 1}


def test_mrts_length_histogram_expansion():
    stats = MacStats(node_id=1)
    stats.record_mrts_length(18)
    stats.record_mrts_length(18)
    stats.record_mrts_length(30)
    assert stats.mrts_lengths == {18: 2, 30: 1}
    assert stats.mrts_length_values() == [18, 18, 30]
