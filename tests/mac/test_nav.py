"""Virtual carrier sense details in the 802.11 family."""

import pytest

from repro.mac.bmmm import BmmmProtocol
from repro.mac.frames import CtsFrame, DataFrame, RtsFrame
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, make_dot11_testbed


def test_overheard_rts_sets_nav():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    mac2 = tb.macs[2]
    mac2.on_frame_received(RtsFrame(0, 1, aux=500), 0)
    assert mac2.nav_until == tb.sim.now + 500 * US


def test_frame_addressed_to_me_does_not_set_my_nav():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    mac1 = tb.macs[1]
    mac1.on_frame_received(RtsFrame(0, 1, aux=500), 0)
    assert mac1.nav_until == 0


def test_nav_keeps_maximum():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    mac2 = tb.macs[2]
    mac2.on_frame_received(RtsFrame(0, 1, aux=500), 0)
    mac2.on_frame_received(CtsFrame(1, 0, aux=100), 1)
    assert mac2.nav_until == 500 * US  # the shorter CTS cannot reduce it


def test_data_frames_carry_no_nav():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    mac2 = tb.macs[2]
    frame = DataFrame(src=0, dst=1, seq=1, payload_bytes=10, reliable=False)
    mac2.on_frame_received(frame, 0)
    assert mac2.nav_until == 0


def test_bmmm_nav_remaining_monotone_through_round():
    """The duration field shrinks as the batch progresses."""
    tb = make_dot11_testbed(TRIANGLE, protocol="bmmm", seed=1)
    mac = tb.macs[0]
    from repro.mac.base import SendRequest

    mac._request = SendRequest("p", 500, reliable=True, receivers=(1, 2))
    mac._round_receivers = [1, 2]
    mac._round_index = 0
    first = mac._nav_remaining_us()
    mac._round_index = 1
    second = mac._nav_remaining_us()
    assert first > second > 0
    # the remaining time for the first RTS covers at least the data frame
    assert first * US > tb.phy.frame_airtime(528)


def test_rts_refused_while_nav_busy():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1, trace=True)
    tb.macs[1].nav_until = 5 * MS
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "pkt", 100))
    tb.run(3 * MS)
    # No CTS before the NAV clears: node 1 stayed silent.
    assert tb.macs[1].stats.frames_tx.get("CtsFrame") is None
