"""BMW: round-robin unicasts with overhearing (Fig. 1a)."""

import pytest

from repro.mac.bmw import BmwProtocol
from repro.mac.dot11 import Dot11Config
from repro.sim.units import MS

from tests.conftest import TRIANGLE, collect_upper, make_dot11_testbed


def test_overhearing_skips_redundant_unicasts():
    """Receiver 2 overhears the DATA unicast to receiver 1; its CTS then
    announces the next sequence number and the sender skips its DATA."""
    tb = make_dot11_testbed(TRIANGLE, protocol="bmw", seed=1)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert rx1 == [("pkt", 0)] and rx2 == [("pkt", 0)]
    assert outcomes[0].acked == (1, 2)
    stats = tb.macs[0].stats
    assert stats.frames_tx.get("RtsFrame") == 2  # one RTS per receiver
    assert stats.frames_tx.get("RDATA") == 1     # but only ONE data tx


def test_each_unicast_has_contention_phase():
    """Per Fig. 1a every per-receiver unicast is preceded by contention:
    the second RTS is separated from the first exchange by more than SIFS."""
    tb = make_dot11_testbed(TRIANGLE, protocol="bmw", seed=1, trace=True)
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1, 2), "pkt", 500))
    tb.run(100 * MS)
    rts_starts = [e.time for e in tb.tracer.events
                  if e.kind == "tx-start" and e.node == 0
                  and str(e.detail.get("frame", "")).startswith("RTS")]
    assert len(rts_starts) == 2


def test_unreachable_receiver_dropped_but_round_continues():
    tb = make_dot11_testbed([(0, 0), (500, 0), (0, 50)], protocol="bmw",
                            seed=1, config=Dot11Config(retry_limit=1))
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 300, on_complete=outcomes.append)
    tb.run(400 * MS)
    assert outcomes[0].failed == (1,)
    assert outcomes[0].acked == (2,)
    assert rx2 == [("pkt", 0)]
    assert tb.macs[0].stats.packets_dropped == 1


def test_promiscuous_delivery_deduplicates():
    """Node 2 overhears the DATA to node 1 and also gets its own skip-CTS
    round -- but the payload is delivered exactly once."""
    tb = make_dot11_testbed(TRIANGLE, protocol="bmw", seed=1)
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_reliable((1, 2), "once", 500)
    tb.run(100 * MS)
    assert rx2 == [("once", 0)]


def test_sequence_numbers_advance_per_packet():
    tb = make_dot11_testbed(TRIANGLE, protocol="bmw", seed=1)
    rx1 = collect_upper(tb.macs[1])
    for i in range(3):
        tb.macs[0].send_reliable((1, 2), f"p{i}", 300)
    tb.run(300 * MS)
    assert [p for p, _ in rx1] == ["p0", "p1", "p2"]
    assert tb.macs[0].stats.packets_delivered == 3
