"""The MAC service interface: requests, queueing, completion."""

import pytest

from repro.mac.addresses import BROADCAST
from repro.mac.base import SendRequest, TransmitQueue
from repro.world.testbed import MacTestbed
from repro.core import RmacProtocol, RmacConfig


class TestSendRequest:
    def test_reliable_validation(self):
        with pytest.raises(ValueError):
            SendRequest("p", 10, reliable=True, receivers=())
        with pytest.raises(ValueError):
            SendRequest("p", 10, reliable=True, receivers=(1, 1))
        with pytest.raises(ValueError):
            SendRequest("p", 10, reliable=True, receivers=(1, BROADCAST))
        with pytest.raises(ValueError):
            SendRequest("p", -1, reliable=True, receivers=(1,))

    def test_unreliable_takes_single_dst(self):
        request = SendRequest("p", 10, reliable=False, receivers=(BROADCAST,))
        assert request.receivers == (BROADCAST,)
        with pytest.raises(ValueError):
            SendRequest("p", 10, reliable=False, receivers=(1, 2))


class TestTransmitQueue:
    def test_fifo_order(self):
        queue = TransmitQueue()
        reqs = [SendRequest(i, 1, reliable=False, receivers=(1,)) for i in range(3)]
        for request in reqs:
            assert queue.push(request)
        assert queue.pop() is reqs[0]
        assert queue.peek() is reqs[1]
        assert len(queue) == 2

    def test_capacity_overflow(self):
        queue = TransmitQueue(capacity=2)
        reqs = [SendRequest(i, 1, reliable=False, receivers=(1,)) for i in range(3)]
        assert queue.push(reqs[0]) and queue.push(reqs[1])
        assert not queue.push(reqs[2])
        assert queue.overflowed == 1 and queue.enqueued == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TransmitQueue(capacity=0)


class TestServiceEntryPoints:
    def _mac(self, capacity=None):
        tb = MacTestbed(coords=[(0, 0), (50, 0)])
        cfg = RmacConfig(queue_capacity=capacity)
        tb.build_macs(lambda i, t: RmacProtocol(i, t.sim, t.radios[i], t.node_rng(i), cfg))
        return tb, tb.macs[0]

    def test_send_reliable_counts_offered(self):
        tb, mac = self._mac()
        mac.send_reliable((1,), "payload", 100)
        assert mac.stats.packets_offered == 1

    def test_queue_overflow_reports_dropped_outcome(self):
        tb, mac = self._mac(capacity=2)
        outcomes = []
        mac.send_reliable((1,), "a", 2200)
        mac.send_reliable((1,), "b", 2200)
        ok = mac.send_reliable((1,), "c", 2200, on_complete=outcomes.append)
        assert not ok
        assert mac.stats.queue_drops == 1
        assert outcomes and outcomes[0].dropped and outcomes[0].failed == (1,)

    def test_deliver_up_without_listener_is_safe(self):
        tb, mac = self._mac()
        mac.deliver_up("payload", 1)  # no upper_rx attached: no raise
