"""Edge behaviors of the DCF base shared by the 802.11 family."""

import pytest

from repro.mac.dot11 import Dot11Config
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_dot11_testbed


def test_broadcast_defers_under_nav():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1, trace=True)
    tb.sim.at(1 * MS, lambda: setattr(tb.macs[0], "nav_until", tb.sim.now + 4 * MS))
    tb.sim.at(1 * MS + 10 * US, lambda: tb.macs[0].send_unreliable(-1, "b", 20))
    tb.run(50 * MS)
    starts = [e for e in tb.tracer.events if e.kind == "tx-start" and e.node == 0]
    assert starts and starts[0].time >= 5 * MS  # waited out the NAV


def test_response_timeout_formula():
    config = Dot11Config()
    # SIFS + airtime(CTS) + 2 tau + guard.
    expected = 10 * US + (96 + 56) * US + 2 * US + 2 * US
    assert config.response_timeout(14) == expected


def test_idle_duration_blends_physical_and_virtual():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    mac = tb.macs[0]
    tb.run(2 * MS)
    physical = tb.radios[0].data_idle_duration()
    assert mac._idle_duration() == physical
    mac.nav_until = tb.sim.now - 500 * US
    assert mac._idle_duration() == min(physical, 500 * US)
    mac.nav_until = tb.sim.now + 1 * MS
    assert mac._medium_busy()


def test_back_to_back_requests_queue_and_complete():
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=1)
    rx1 = collect_upper(tb.macs[1])
    outcomes = []
    for i in range(4):
        tb.macs[0].send_reliable((1,), f"p{i}", 200, on_complete=outcomes.append)
    tb.run(200 * MS)
    assert [p for p, _ in rx1] == ["p0", "p1", "p2", "p3"]
    assert len(outcomes) == 4 and all(o.acked == (1,) for o in outcomes)


def test_two_senders_one_receiver_serialize():
    """Contention: 0 and 2 both unicast to 1; both succeed."""
    tb = make_dot11_testbed(TRIANGLE, protocol="dot11", seed=6)
    rx1 = collect_upper(tb.macs[1])
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "from-0", 400))
    tb.sim.at(1 * MS, lambda: tb.macs[2].send_reliable((1,), "from-2", 400))
    tb.run(200 * MS)
    assert sorted(p for p, _ in rx1) == ["from-0", "from-2"]
