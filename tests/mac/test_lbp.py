"""LBP: leader-based feedback with NCTS/NAK negative signalling."""

import pytest

from repro.mac.dot11 import Dot11Config
from repro.mac.lbp import LbpProtocol
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_dot11_testbed


def test_leader_answers_for_the_group():
    tb = make_dot11_testbed(TRIANGLE, protocol="lbp", seed=1)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert rx1 == [("pkt", 0)] and rx2 == [("pkt", 0)]
    assert outcomes[0].acked == (1, 2)
    # Only the leader (node 1) produced CTS and ACK.
    assert tb.macs[1].stats.frames_tx.get("CtsFrame") == 1
    assert tb.macs[1].stats.frames_tx.get("AckFrame") == 1
    assert tb.macs[2].stats.frames_tx.get("CtsFrame") is None
    assert tb.macs[2].stats.frames_tx.get("AckFrame") is None


def test_leader_nav_busy_replies_ncts():
    tb = make_dot11_testbed(TRIANGLE, protocol="lbp", seed=1)
    # Force the leader's NAV to be set when the RTS arrives.
    tb.sim.at(1 * MS, lambda: setattr(tb.macs[1], "nav_until", tb.sim.now + 5_000_000))
    tb.sim.at(1 * MS + 10 * US, lambda: tb.macs[0].send_reliable((1, 2), "pkt", 200))
    tb.run(300 * MS)
    # At least one NCTS was produced before the exchange finally succeeded.
    assert tb.macs[1].stats.frames_tx.get("NctsFrame", 0) >= 1
    assert tb.macs[0].stats.packets_delivered == 1


def test_non_leader_corruption_draws_nak(monkeypatch):
    """A non-leader that detects a corrupted copy NAKs, forcing a
    retransmission even though the leader was satisfied."""
    tb = make_dot11_testbed(TRIANGLE, protocol="lbp", seed=1)
    # Corrupt node 2's copy of the first reliable data frame by injecting
    # a frame error instead of the reception.
    original = LbpProtocol._handle_reliable_data
    state = {"corrupted": False}

    def corrupt_once(self, frame):
        if self.node_id == 2 and not state["corrupted"]:
            state["corrupted"] = True
            self.on_frame_error(frame.src)
            return
        original(self, frame)

    monkeypatch.setattr(LbpProtocol, "_handle_reliable_data", corrupt_once)
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_reliable((1, 2), "pkt", 500)
    tb.run(300 * MS)
    assert tb.macs[2].stats.frames_tx.get("NakFrame", 0) >= 1
    assert tb.macs[0].stats.retransmissions >= 1
    assert rx2 == [("pkt", 0)]  # the retry delivered it


def test_silent_member_loss_invisible_to_sender(monkeypatch):
    """LBP's structural gap: a non-leader that misses everything stays
    silent and the sender still reports success."""
    original = LbpProtocol._handle_reliable_data

    def deaf(self, frame):
        if self.node_id == 2:
            return  # missed entirely: no reception, no NAK state
        original(self, frame)

    monkeypatch.setattr(LbpProtocol, "_handle_reliable_data", deaf)
    tb = make_dot11_testbed(TRIANGLE, protocol="lbp", seed=1)
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert outcomes[0].acked == (1, 2)  # sender believes success...
    assert rx2 == []                    # ...but node 2 never got it


def test_unreachable_leader_drops():
    tb = make_dot11_testbed([(0, 0), (500, 0), (0, 50)], protocol="lbp",
                            seed=1, config=Dot11Config(retry_limit=1))
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 300, on_complete=outcomes.append)
    tb.run(300 * MS)
    assert outcomes[0].dropped
    assert tb.macs[0].stats.packets_dropped == 1
