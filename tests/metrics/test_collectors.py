"""Application-level metric collection."""

import pytest

from repro.metrics.collectors import MetricsCollector


def test_delivery_ratio_counts_non_source_nodes():
    collector = MetricsCollector()
    for pkt in range(2):
        collector.record_generated(pkt, pkt * 100)
    # 3-node network: 2 packets x 2 receivers expected = 4.
    collector.record_delivery(1, 0, 10)
    collector.record_delivery(2, 0, 20)
    collector.record_delivery(1, 1, 10)
    assert collector.delivery_ratio(3) == pytest.approx(3 / 4)
    assert collector.total_deliveries == 3
    assert collector.n_generated == 2


def test_delivery_ratio_none_without_traffic():
    assert MetricsCollector().delivery_ratio(5) is None


def test_mean_and_max_delay():
    collector = MetricsCollector()
    collector.record_delivery(1, 0, 100)
    collector.record_delivery(2, 0, 300)
    assert collector.mean_delay_ns() == pytest.approx(200)
    assert collector.max_delay_ns() == 300


def test_mean_delay_none_without_deliveries():
    assert MetricsCollector().mean_delay_ns() is None
    assert MetricsCollector().max_delay_ns() == 0


def test_keep_delays_records_tuples():
    collector = MetricsCollector(keep_delays=True)
    collector.record_delivery(4, 7, 55)
    assert collector.delay_records == [(4, 7, 55)]


def test_delays_not_kept_by_default():
    collector = MetricsCollector()
    collector.record_delivery(4, 7, 55)
    assert collector.delay_records == []
