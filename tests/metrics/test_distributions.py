"""Delay distribution summaries."""

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.metrics.distributions import delay_distribution, per_node_delay_means
from repro.sim.units import SEC


def collector_with(delays):
    metrics = MetricsCollector(keep_delays=True)
    for i, (node, delay) in enumerate(delays):
        metrics.record_delivery(node, i, delay)
    return metrics


def test_requires_keep_delays():
    with pytest.raises(ValueError):
        delay_distribution(MetricsCollector())
    with pytest.raises(ValueError):
        per_node_delay_means(MetricsCollector())


def test_empty_distribution():
    dist = delay_distribution(MetricsCollector(keep_delays=True))
    assert dist.count == 0 and dist.max_s == 0.0


def test_percentile_ordering():
    metrics = collector_with([(1, i * SEC) for i in range(1, 101)])
    dist = delay_distribution(metrics)
    assert dist.count == 100
    assert dist.p50_s <= dist.p90_s <= dist.p99_s <= dist.max_s
    assert dist.max_s == pytest.approx(100.0)
    assert dist.p50_s == pytest.approx(50.5)


def test_mean_matches_collector():
    metrics = collector_with([(1, 2 * SEC), (2, 4 * SEC)])
    dist = delay_distribution(metrics)
    assert dist.mean_s == pytest.approx(3.0)
    assert dist.as_row()["mean (s)"] == pytest.approx(3.0)


def test_per_node_means():
    metrics = collector_with([(1, 2 * SEC), (1, 4 * SEC), (2, 10 * SEC)])
    means = per_node_delay_means(metrics)
    assert means[1] == pytest.approx(3.0)
    assert means[2] == pytest.approx(10.0)


def test_deeper_nodes_have_larger_delays_in_real_run():
    from repro.world.network import ScenarioConfig, build_network

    config = ScenarioConfig(protocol="rmac", n_nodes=14, width=400, height=80,
                            rate_pps=10, n_packets=30, seed=3)
    net = build_network(config)
    net.metrics.keep_delays = True
    net.run()
    means = per_node_delay_means(net.metrics)
    hops = {layer.node_id: layer.bless.hops for layer in net.layers}
    shallow = [means[n] for n in means if hops.get(n, 99) == 1]
    deep = [means[n] for n in means if hops.get(n, 0) >= 3]
    if shallow and deep:  # topology-dependent; guard for robustness
        assert min(deep) > min(shallow)
