"""Per-run aggregation into the paper's figure inputs."""

import pytest

from repro.mac.stats import MacStats
from repro.metrics.collectors import MetricsCollector
from repro.metrics.summary import summarize
from repro.sim.units import SEC


def forwarder(node_id, offered=10, dropped=1, retx=3, control=100, data=1000,
              aborts=0, mrts=0, lengths=None):
    stats = MacStats(node_id=node_id)
    stats.packets_offered = offered
    stats.packets_dropped = dropped
    stats.retransmissions = retx
    stats.control_tx_time = control
    stats.data_tx_time = data
    stats.mrts_transmissions = mrts
    stats.mrts_aborted = aborts
    for length, count in (lengths or {}).items():
        stats.mrts_lengths[length] = count
    return stats


def test_non_leaf_definition_excludes_leaves():
    leaf = MacStats(node_id=2)  # never offered a packet
    fwd = forwarder(1)
    metrics = MetricsCollector()
    metrics.record_generated(0, 0)
    metrics.record_delivery(1, 0, SEC)
    summary = summarize("rmac", metrics, [fwd, leaf])
    assert summary.n_forwarders == 1
    assert summary.avg_drop_ratio == pytest.approx(0.1)
    assert summary.avg_retx_ratio == pytest.approx(0.3)


def test_ratios_averaged_over_nodes():
    a = forwarder(0, offered=10, dropped=0, retx=0)
    b = forwarder(1, offered=10, dropped=5, retx=10)
    summary = summarize("rmac", MetricsCollector(), [a, b])
    assert summary.avg_drop_ratio == pytest.approx(0.25)
    assert summary.avg_retx_ratio == pytest.approx(0.5)


def test_mrts_lengths_pooled_over_frames():
    a = forwarder(0, mrts=3, lengths={18: 2, 30: 1})
    b = forwarder(1, mrts=1, lengths={60: 1})
    summary = summarize("rmac", MetricsCollector(), [a, b])
    assert summary.mrts_len_avg == pytest.approx((18 * 2 + 30 + 60) / 4)
    assert summary.mrts_len_max == 60


def test_abort_ratio_per_node_not_pooled():
    a = forwarder(0, mrts=10, aborts=1)
    b = forwarder(1, mrts=100, aborts=0)
    summary = summarize("rmac", MetricsCollector(), [a, b])
    assert summary.abort_avg == pytest.approx(0.05)  # mean of 0.1 and 0.0
    assert summary.abort_max == pytest.approx(0.1)


def test_delay_converted_to_seconds():
    metrics = MetricsCollector()
    metrics.record_generated(0, 0)
    metrics.record_delivery(1, 0, SEC // 2)
    summary = summarize("rmac", metrics, [forwarder(0)])
    assert summary.avg_delay_s == pytest.approx(0.5)
    assert summary.max_delay_s == pytest.approx(0.5)


def test_empty_run_yields_nones():
    summary = summarize("rmac", MetricsCollector(), [MacStats(node_id=0)])
    assert summary.delivery_ratio is None
    assert summary.avg_delay_s is None
    assert summary.avg_drop_ratio is None
    assert summary.mrts_len_avg is None
    assert summary.abort_avg is None


def test_overhead_ratio_includes_abt_time():
    stats = forwarder(0, control=100, data=1000)
    stats.control_rx_time = 50
    stats.abt_check_time = 50
    summary = summarize("rmac", MetricsCollector(), [stats])
    assert summary.avg_txoh_ratio == pytest.approx(0.2)
