#!/usr/bin/env python3
"""Assert two result stores are bit-identical, point for point.

The farm's acceptance bar (see ``docs/campaign-farm.md``): a sharded
multi-process ``repro campaign farm`` must merge into a canonical store
whose per-point ``config_hash`` and ``RunSummary`` dicts exactly equal
a single-process ``repro campaign run`` of the same spec. CI runs both
over the committed smoke spec and diffs them with this tool.

Usage::

    PYTHONPATH=src python tools/compare_stores.py STORE_A STORE_B

Exit status: 0 when every point matches (keys, config hashes, statuses
and summaries all equal), 1 with a per-point diff on stderr otherwise.
Extra files in either directory (shards, heartbeats, manifests,
``farm.json``) are ignored — only the loaded records are compared.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def compare_stores(path_a: str, path_b: str) -> list:
    """Human-readable mismatch descriptions (empty = bit-identical)."""
    from repro.experiments.store import ResultStore

    store_a = ResultStore(path_a, create=False)
    store_b = ResultStore(path_b, create=False)
    records_a = dict(store_a.records())
    records_b = dict(store_b.records())

    problems = []
    for key in sorted(set(records_a) | set(records_b)):
        name = "|".join(str(part) for part in key)
        a, b = records_a.get(key), records_b.get(key)
        if a is None or b is None:
            problems.append(f"{name}: only in "
                            f"{path_b if a is None else path_a}")
            continue
        for field in ("config_hash", "status"):
            if a.get(field) != b.get(field):
                problems.append(f"{name}: {field} differs "
                                f"({a.get(field)!r} vs {b.get(field)!r})")
        if a.get("summary") != b.get("summary"):
            summary_a = a.get("summary") or {}
            summary_b = b.get("summary") or {}
            fields = sorted(
                f for f in set(summary_a) | set(summary_b)
                if summary_a.get(f) != summary_b.get(f))
            problems.append(f"{name}: summary differs in {fields}")
    return problems


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    problems = compare_stores(args[0], args[1])
    for problem in problems:
        print(f"compare stores: {problem}", file=sys.stderr)
    if problems:
        print(f"compare stores: {len(problems)} mismatch(es) between "
              f"{args[0]} and {args[1]}", file=sys.stderr)
        return 1
    from repro.experiments.store import ResultStore
    n = len(dict(ResultStore(args[0], create=False).records()))
    print(f"compare stores: {args[0]} and {args[1]} are bit-identical "
          f"({n} point(s))")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
    sys.exit(main())
