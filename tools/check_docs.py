#!/usr/bin/env python3
"""Docs-vs-code drift check: CLI commands and Python references.

Two independent extractors keep the markdown docs honest:

* **CLI commands** — every ``repro`` / ``python -m repro`` invocation
  inside a fenced code block must name subcommands, nested subcommands,
  flags and positional choices that exist in the live argparse tree
  (``repro.cli.build_parser``). Pure parser introspection, no
  simulation.
* **Python references** — every dotted ``repro.<module>.<name>`` name
  appearing in inline code spans or fenced code blocks must resolve:
  the longest importable module prefix is imported via ``importlib``
  and the remaining parts are resolved with ``getattr``. An API rename
  therefore breaks the docs check, not just the reader.

Exit status: 0 when everything resolves, 1 when any command or
reference is stale (or when nothing was found at all, which would mean
an extractor broke).

Usage::

    PYTHONPATH=src python tools/check_docs.py [FILE.md ...]

With no arguments it checks README.md, EXPERIMENTS.md, DESIGN.md and
docs/*.md relative to the repository root.
"""

from __future__ import annotations

import argparse
import glob
import importlib
import os
import re
import shlex
import sys
from typing import Dict, List, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A line (inside a fenced block) that invokes the repro CLI.
_INVOCATION = re.compile(r"(?:python[\w.]*\s+-m\s+repro|^\s*\$?\s*repro)\s")


def default_files(root: str = _REPO_ROOT) -> List[str]:
    files = [os.path.join(root, name)
             for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md")]
    files.extend(sorted(glob.glob(os.path.join(root, "docs", "*.md"))))
    return [f for f in files if os.path.exists(f)]


def extract_commands(text: str) -> List[Tuple[int, List[str]]]:
    """(line number, argv-after-'repro') for every CLI invocation inside
    a fenced code block. Backslash continuations are joined; ``$``
    prompts and ``#`` comments are stripped."""
    commands: List[Tuple[int, List[str]]] = []
    in_fence = False
    pending: Optional[Tuple[int, str]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            pending = None
            continue
        if not in_fence:
            continue
        if pending is not None:
            start, joined = pending
            line = joined + " " + stripped
        else:
            start, line = lineno, stripped
        if line.endswith("\\"):
            pending = (start, line[:-1].rstrip())
            continue
        pending = None
        if not _INVOCATION.search(line):
            continue
        try:
            tokens = shlex.split(line.lstrip("$ "), comments=True)
        except ValueError:
            continue
        if "repro" not in tokens:
            continue
        argv = tokens[tokens.index("repro") + 1:]
        if argv:
            commands.append((start, argv))
    return commands


#: A dotted Python reference rooted at the repro package. The match
#: stops before call parentheses ("repro.register_protocol(name, ...)")
#: and never crosses a space, so prose around the name is ignored.
_PY_REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Code contexts worth scanning for references: inline spans and fenced
#: blocks. (Prose outside backticks may legitimately discuss names that
#: no longer exist — e.g. a changelog — so it is left alone.)
_INLINE_CODE = re.compile(r"`([^`\n]+)`")


def extract_python_refs(text: str) -> List[Tuple[int, str]]:
    """(line number, dotted name) for every ``repro.*`` reference in an
    inline code span or fenced code block, deduplicated per line."""
    refs: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            spans = [raw]
        else:
            spans = _INLINE_CODE.findall(raw)
        seen = set()
        for span in spans:
            for match in _PY_REF.finditer(span):
                name = match.group(0).rstrip(".")
                if name != "repro" and name not in seen:
                    seen.add(name)
                    refs.append((lineno, name))
    return refs


def resolve_python_ref(name: str) -> Optional[str]:
    """None if the dotted name resolves (module, or attribute walked
    from its longest importable module prefix); an error string if not."""
    parts = name.split(".")
    module = None
    module_error = None
    for i in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:i]))
            break
        except ImportError as exc:
            if module_error is None:
                module_error = str(exc)
        except Exception as exc:  # import-time crash in the module
            return f"importing {'.'.join(parts[:i])!r} raised {exc!r}"
    if module is None:
        return f"no importable module prefix ({module_error})"
    obj = module
    for part in parts[i:]:
        try:
            obj = getattr(obj, part)
        except AttributeError:
            return (f"{obj.__name__ if hasattr(obj, '__name__') else obj!r} "
                    f"has no attribute {part!r}")
    return None


def check_python_refs(text: str, filename: str) -> Tuple[List[str], int]:
    """(problems, reference count) for one document's Python refs."""
    problems: List[str] = []
    refs = extract_python_refs(text)
    cache: Dict[str, Optional[str]] = {}
    for lineno, name in refs:
        if name not in cache:
            cache[name] = resolve_python_ref(name)
        error = cache[name]
        if error is not None:
            problems.append(
                f"{filename}:{lineno}: unresolvable Python reference "
                f"{name!r} ({error})")
    return problems, len(refs)


def _subparser_action(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    return None


def _check_argv(argv: List[str], parser: argparse.ArgumentParser,
                location: str, problems: List[str]) -> None:
    """Walk one documented argv against the parser tree."""
    path = "repro"
    options: Dict[str, argparse.Action] = {}
    positionals: List[argparse.Action] = []

    def enter(p: argparse.ArgumentParser) -> None:
        for action in p._actions:
            for option in action.option_strings:
                options[option] = action
            if (not action.option_strings
                    and not isinstance(action, argparse._SubParsersAction)):
                positionals.append(action)

    enter(parser)
    subparsers = _subparser_action(parser)
    i = 0
    while i < len(argv):
        token = argv[i]
        i += 1
        if token.startswith("--"):
            name = token.split("=", 1)[0]
            action = options.get(name)
            if action is None:
                problems.append(
                    f"{location}: unknown flag {name!r} for '{path}'")
            elif action.nargs != 0 and "=" not in token:
                i += 1  # the flag's value
        elif subparsers is not None and token in subparsers.choices:
            path += f" {token}"
            child = subparsers.choices[token]
            enter(child)
            subparsers = _subparser_action(child)
        elif subparsers is not None and not positionals:
            problems.append(
                f"{location}: unknown subcommand {token!r} for '{path}' "
                f"(choices: {', '.join(sorted(subparsers.choices))})")
            return
        elif positionals:
            action = positionals.pop(0)
            if action.choices is not None and token not in action.choices:
                problems.append(
                    f"{location}: invalid value {token!r} for '{path} "
                    f"{action.dest}' (choices: "
                    f"{', '.join(sorted(map(str, action.choices)))})")
        # Anything else is a flag's already-consumed value or free text.


def check_text(text: str, parser: argparse.ArgumentParser,
               filename: str) -> Tuple[List[str], int]:
    """(problems, command count) for one document."""
    problems: List[str] = []
    commands = extract_commands(text)
    for lineno, argv in commands:
        _check_argv(argv, parser, f"{filename}:{lineno}", problems)
    return problems, len(commands)


def check_files(files: List[str],
                parser: Optional[argparse.ArgumentParser] = None,
                ) -> Tuple[List[str], int]:
    """(problems, checks) across files: CLI commands + Python refs."""
    if parser is None:
        from repro.cli import build_parser
        parser = build_parser()
    all_problems: List[str] = []
    total = 0
    for path in files:
        with open(path) as fh:
            text = fh.read()
        relpath = os.path.relpath(path, _REPO_ROOT)
        problems, count = check_text(text, parser, relpath)
        all_problems.extend(problems)
        total += count
        problems, count = check_python_refs(text, relpath)
        all_problems.extend(problems)
        total += count
    return all_problems, total


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    files = args or default_files()
    problems, total = check_files(files)
    if total == 0:
        print("docs check: no repro commands or Python references found "
              "in any doc -- the extractors or the docs are broken",
              file=sys.stderr)
        return 1
    for problem in problems:
        print(f"docs check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs check: {len(problems)} stale reference(s) "
              f"across {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"docs check: {total} repro command(s) and Python reference(s) "
          f"across {len(files)} file(s) all match the code")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
    sys.exit(main())
