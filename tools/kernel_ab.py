#!/usr/bin/env python
"""Kernel A/B bit-identity gate: heap vs calendar, full stack.

Runs the same committed scenarios once per event-queue kernel and
asserts the runs are *bit-identical* where it matters:

* every deterministic ``RunSummary`` metric field matches exactly;
* ``events_processed`` matches (same number of events executed);
* the **trace streams** match -- each run's tracer feeds a streaming
  SHA-256 over the JSONL rendering of every emitted event, so the
  comparison covers the exact sequence of protocol-level actions
  (state changes, tx/rx, tones, drops) without holding two
  million-event traces in memory.

Scenarios:

* ``rmac-40``   -- the committed 40-node paper-scale bench scenario;
* ``bmmm-40``   -- the same field under the BMMM baseline protocol;
* ``waypoint-1000`` -- the 1000-node random-waypoint scaling point
  (the headline bench point). Skipped under ``--quick``.

Exit status 0 iff every scenario matches; CI runs this as the kernel
A/B job. Any mismatch prints the drifted fields/digests and fails.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

from repro.experiments.bench import METRIC_FIELDS
from repro.sim.trace import TraceBuffer, TraceEvent, Tracer
from repro.world.network import ScenarioConfig, build_network

KERNELS = ("heap", "calendar")

SCENARIOS = {
    "rmac-40": dict(protocol="rmac", n_nodes=40, width=360.0, height=220.0,
                    rate_pps=20.0, n_packets=120, seed=1),
    "bmmm-40": dict(protocol="bmmm", n_nodes=40, width=360.0, height=220.0,
                    rate_pps=20.0, n_packets=120, seed=3),
    "waypoint-1000": dict(protocol="rmac", n_nodes=1000, width=1600.0,
                          height=1000.0, mobile=True, rate_pps=2.0,
                          n_packets=6, warmup_s=2.0, drain_s=2.0, seed=1),
}


class HashBuffer(TraceBuffer):
    """Streams every trace event into a SHA-256; keeps nothing."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._count = 0

    def append(self, event: TraceEvent) -> None:
        self._hash.update(event.to_json().encode())
        self._hash.update(b"\n")
        self._count += 1

    def snapshot(self):
        return []

    def __len__(self) -> int:
        return self._count

    @property
    def digest(self) -> str:
        return self._hash.hexdigest()


def run_one(name: str, kernel: str) -> dict:
    config = ScenarioConfig(**SCENARIOS[name])
    buffer = HashBuffer()
    tracer = Tracer(enabled=True, buffer=buffer)
    network = build_network(config, tracer=tracer, kernel=kernel)
    summary = network.run()
    return {
        "metrics": {field: getattr(summary, field)
                    for field in METRIC_FIELDS},
        "events": network.sim.events_processed,
        "trace_events": len(buffer),
        "trace_sha256": buffer.digest,
    }


def compare(name: str) -> bool:
    runs = {kernel: run_one(name, kernel) for kernel in KERNELS}
    ref_kernel, *others = KERNELS
    ref = runs[ref_kernel]
    ok = True
    for kernel in others:
        other = runs[kernel]
        drifted = [key for key in ("events", "trace_events", "trace_sha256")
                   if ref[key] != other[key]]
        drifted += [f"metrics.{field}" for field in METRIC_FIELDS
                    if ref["metrics"][field] != other["metrics"][field]]
        if drifted:
            ok = False
            print(f"FAIL {name}: {ref_kernel} vs {kernel} drift in "
                  f"{', '.join(drifted)}")
            for key in drifted:
                if key.startswith("metrics."):
                    field = key.split(".", 1)[1]
                    print(f"  {field}: {ref['metrics'][field]!r} != "
                          f"{other['metrics'][field]!r}")
                else:
                    print(f"  {key}: {ref[key]!r} != {other[key]!r}")
    if ok:
        print(f"ok   {name}: {ref['trace_events']} trace events, "
              f"{ref['events']} sim events, sha256 "
              f"{ref['trace_sha256'][:16]}... identical across "
              f"{', '.join(KERNELS)}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the 1000-node waypoint scenario")
    parser.add_argument("--only", choices=sorted(SCENARIOS),
                        help="run a single scenario")
    args = parser.parse_args(argv)
    names = [args.only] if args.only else list(SCENARIOS)
    if args.quick and not args.only:
        names.remove("waypoint-1000")
    failures = [name for name in names if not compare(name)]
    if failures:
        print(f"kernel A/B FAILED: {', '.join(failures)}")
        return 1
    print("kernel A/B: all scenarios bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
