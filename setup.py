"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP-517 editable installs fail; this classic setup.py keeps
``pip install -e .`` working through the legacy develop path. All project
metadata lives in pyproject.toml and is mirrored here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'RMAC: A Reliable Multicast MAC Protocol for "
        "Wireless Ad Hoc Networks' (Si & Li, ICPP 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
