"""Fig. 8: average packet drop ratio over non-leaf nodes.

Paper shape: essentially zero when stationary for RMAC (~0.003 at the
highest rate); grows with mobility; RMAC <= BMMM everywhere.
"""

from benchmarks.conftest import BENCH_RATES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig8_drop_ratio(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig8"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 8: Average Packet Drop Ratio"))
    points = by_point(sweep_results)
    for rate in BENCH_RATES:
        assert points[("rmac", "stationary", rate)]["avg_drop_ratio"] < 0.01
    # Mobility raises drops for both protocols (vs their stationary runs).
    for protocol in ("rmac", "bmmm"):
        static = max(
            points[(protocol, "stationary", r)]["avg_drop_ratio"] for r in BENCH_RATES
        )
        mobile = max(
            points[(protocol, "speed2", r)]["avg_drop_ratio"] for r in BENCH_RATES
        )
        assert mobile >= static
