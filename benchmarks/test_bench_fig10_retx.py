"""Fig. 10: average packet retransmission ratio over non-leaf nodes.

Paper shape: stationary RMAC <= ~0.32; rises toward ~1 with mobility;
RMAC below BMMM ("the protection of RBT really helps").
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig10_retransmission_ratio(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig10"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 10: Average Packet Retransmission Ratio"))
    points = by_point(sweep_results)
    # Stationary RMAC: low retransmission ratio (paper: <= 0.32).
    for rate in BENCH_RATES:
        assert points[("rmac", "stationary", rate)]["avg_retx_ratio"] < 0.6
    # Mobility increases RMAC's retransmissions.
    static_mean = sum(
        points[("rmac", "stationary", r)]["avg_retx_ratio"] for r in BENCH_RATES
    )
    mobile_mean = sum(
        points[("rmac", "speed2", r)]["avg_retx_ratio"] for r in BENCH_RATES
    )
    assert mobile_mean > static_mean
