"""Fig. 7: packet delivery ratio vs source rate, RMAC vs BMMM, three
mobility scenarios.

Paper shape: (a) stationary -- RMAC ~1.0 across all rates, BMMM slightly
lower; (b, c) mobile -- both drop (nodes outrun their parents), but RMAC
stays clearly above BMMM.
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig7_delivery_ratio(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig7"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 7: Packet Delivery Ratio"))
    points = by_point(sweep_results)
    # (a) stationary: RMAC essentially perfect at every rate.
    for rate in BENCH_RATES:
        assert points[("rmac", "stationary", rate)]["delivery_ratio"] > 0.97
    # mobile: delivery degrades relative to stationary...
    for scenario in ("speed1", "speed2"):
        for rate in BENCH_RATES:
            rmac = points[("rmac", scenario, rate)]["delivery_ratio"]
            bmmm = points[("bmmm", scenario, rate)]["delivery_ratio"]
            assert rmac < 1.0
            # ...and RMAC stays above BMMM (paper: "much higher").
            assert rmac > bmmm
