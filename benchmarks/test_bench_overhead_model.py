"""Section 2 / 3.4 closed-form arithmetic (the paper's overhead table).

Regenerates, and asserts exactly:

* 96 us physical-layer overhead per frame;
* 56 us ACK payload airtime;
* 632 n us of BMMM control cost per data frame;
* 352 us minimal RMAC exchange and the 20-receiver MRTS cap.
"""

from repro.analysis.overhead import (
    abt_detection_time,
    bmmm_control_overhead,
    bmw_transaction_time,
    max_receivers_per_mrts,
    rmac_control_overhead,
    rmac_min_exchange_time,
)
from repro.experiments.report import format_table
from repro.phy.params import DEFAULT_PHY
from repro.sim.units import US


def test_bench_section2_control_overhead(benchmark):
    def compute():
        rows = []
        for n in (1, 2, 4, 8, 16, 20):
            rows.append({
                "receivers": n,
                "BMMM control (us)": bmmm_control_overhead(n) / US,
                "RMAC control (us)": rmac_control_overhead(n) / US,
                "BMW floor (us)": bmw_transaction_time(n, 500) / US,
                "RMAC/BMMM": rmac_control_overhead(n) / bmmm_control_overhead(n),
            })
        return rows

    rows = benchmark(compute)
    print()
    print(format_table(rows, title="Section 2: per-data-frame control overhead"))
    assert DEFAULT_PHY.phy_overhead == 96 * US
    assert DEFAULT_PHY.payload_airtime(14) == 56 * US
    assert bmmm_control_overhead(7) == 632 * 7 * US
    assert all(row["RMAC/BMMM"] < 0.35 for row in rows)


def test_bench_section34_receiver_limit(benchmark):
    result = benchmark(max_receivers_per_mrts)
    assert result == 20
    assert rmac_min_exchange_time() == 352 * US
    assert abt_detection_time() == 17 * US
