"""Fig. 13: MRTS abortion ratio, avg / 99p / max over non-leaf nodes
(RMAC only).

Paper shape: a rare event -- stationary averages below 0.0035 and 99th
percentiles below 0.03; slightly larger when mobile (a node with an
ongoing MRTS can move into another node's RBT range).
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig13_mrts_abortion(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig13"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 13: MRTS Abortion Ratio"))
    points = by_point(sweep_results)
    for scenario in SCENARIO_NAMES:
        for rate in BENCH_RATES:
            point = points[("rmac", scenario, rate)]
            assert point["abort_avg"] is not None
            # "MRTS abortion is a rare phenomenon in RMAC."
            assert point["abort_avg"] < 0.05, (scenario, rate)
            assert point["abort_max"] < 0.3
