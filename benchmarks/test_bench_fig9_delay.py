"""Fig. 9: average end-to-end delay.

Paper shape: RMAC under ~2 s and growing slowly with rate; BMMM several
times slower in every scenario.
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig9_end_to_end_delay(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig9"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 9: Average End-to-End Delay (s)"))
    points = by_point(sweep_results)
    for scenario in SCENARIO_NAMES:
        for rate in BENCH_RATES:
            rmac = points[("rmac", scenario, rate)]["avg_delay_s"]
            bmmm = points[("bmmm", scenario, rate)]["avg_delay_s"]
            # RMAC is the faster reliable multicast everywhere.
            assert rmac < bmmm, (scenario, rate)
    # RMAC stays well under the paper's 2 s ceiling at bench scale.
    assert all(
        points[("rmac", s, r)]["avg_delay_s"] < 2.0
        for s in SCENARIO_NAMES for r in BENCH_RATES
    )
