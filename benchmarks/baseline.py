#!/usr/bin/env python
"""Regenerate the committed performance baseline.

Runs the full, smoke *and* large benchmark tiers (see
``repro.experiments.bench``) and writes ``benchmarks/BENCH_<rev>.json``
next to this script. Run it from a clean checkout after a kernel or PHY
change that is meant to shift performance, and commit the result::

    PYTHONPATH=src python benchmarks/baseline.py

Pass ``--no-large`` to skip the scaling tier (minutes of 200-1000-node
runs) when only the kernel numbers changed.

CI and ``repro bench`` compare later runs against the newest committed
``BENCH_*.json``, so the baseline should come from an otherwise idle
machine (wall-clock noise becomes everyone's regression threshold).
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench  # noqa: E402


def main() -> int:
    rev = bench.git_rev(os.path.dirname(__file__))
    points = list(bench.FULL_POINTS) + list(bench.SMOKE_POINTS)
    if "--no-large" not in sys.argv[1:]:
        points += list(bench.LARGE_POINTS)
    report = bench.run_bench(
        points,
        rev=rev,
        progress=lambda rec: print("  " + bench.render_point(rec), flush=True),
    )
    out = os.path.join(os.path.dirname(__file__), f"BENCH_{rev}.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(bench.render(report))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
