#!/usr/bin/env python
"""Regenerate the committed performance baseline.

Runs the full *and* smoke benchmark sweeps (see
``repro.experiments.bench``) and writes ``benchmarks/BENCH_<rev>.json``
next to this script. Run it from a clean checkout after a kernel or PHY
change that is meant to shift performance, and commit the result::

    PYTHONPATH=src python benchmarks/baseline.py

CI and ``repro bench`` compare later runs against the newest committed
``BENCH_*.json``, so the baseline should come from an otherwise idle
machine (wall-clock noise becomes everyone's regression threshold).
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench  # noqa: E402


def main() -> int:
    rev = bench.git_rev(os.path.dirname(__file__))
    report = bench.run_bench(
        list(bench.FULL_POINTS) + list(bench.SMOKE_POINTS),
        rev=rev,
        progress=lambda rec: print(
            f"  {rec['mode']} {rec['protocol']}/seed{rec['seed']}: "
            f"{rec['events']} ev @ {rec['eps']:,.0f}/s", flush=True),
    )
    out = os.path.join(os.path.dirname(__file__), f"BENCH_{rev}.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(bench.render(report))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
