"""Ablations over the design choices DESIGN.md calls out.

The paper leaves several parameters open (retry limit, BLESS period,
bit-error rate, the Twf_rdata guard); these benches sweep each on a small
static network and check the direction of the effect, so a future change
that silently flips a trade-off fails loudly.
"""

import pytest

from repro.world.network import ScenarioConfig, build_network

BASE = dict(protocol="rmac", n_nodes=16, width=220, height=160,
            rate_pps=10, n_packets=40, warmup_s=4.0, drain_s=3.0, seed=3)


def _run(**overrides):
    config = ScenarioConfig(**{**BASE, **overrides})
    return build_network(config).run()


def test_bench_ablation_retry_limit(benchmark):
    """Fewer retries -> more drops under mobility; never worse delivery
    with more retries."""

    def sweep():
        out = {}
        for limit in (0, 2, 7):
            summary = _run(mobile=True, max_speed=8.0, pause_s=5.0,
                           mac_overrides={"retry_limit": limit})
            out[limit] = summary.delivery_ratio
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nretry-limit ablation (delivery): {ratios}")
    assert ratios[7] >= ratios[0] - 0.02


def test_bench_ablation_bless_period(benchmark):
    """A slower tree heartbeat reconfigures later: delivery under high
    mobility must not improve when the period stretches 4x."""

    def sweep():
        out = {}
        for period in (0.5, 2.0):
            summary = _run(mobile=True, max_speed=16.0, pause_s=1.0,
                           bless_period_s=period, bless_expiry_s=3 * period)
            out[period] = summary.delivery_ratio
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nbless-period ablation (delivery): {ratios}")
    assert ratios[0.5] >= ratios[2.0] - 0.05


def test_bench_ablation_rdata_guard(benchmark):
    """The Twf_rdata guard is load-bearing: with the paper's exactly-tight
    timer (guard = 0) the first data bit arrives at the *same instant* the
    timer expires, the receiver gives up first, and delivery collapses to
    zero -- evidence that real hardware needs turnaround slack the paper
    leaves implicit. Any positive guard restores full delivery."""

    def sweep():
        out = {}
        for guard_ns in (0, 2_000, 10_000):
            summary = _run(mac_overrides={"rdata_guard": guard_ns})
            out[guard_ns] = summary.delivery_ratio
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nrdata-guard ablation (delivery): {ratios}")
    assert ratios[0] < 0.5           # the documented collapse
    assert ratios[2_000] > 0.95
    assert ratios[10_000] > 0.95


def test_bench_ablation_max_receivers(benchmark):
    """Shrinking the MRTS cap forces more invocations (Section 3.4): the
    MRTS count rises while delivery stays high."""

    def sweep():
        out = {}
        for cap in (2, 20):
            config = ScenarioConfig(**{**BASE, "mac_overrides": {"max_receivers": cap}})
            net = build_network(config)
            summary = net.run()
            mrts = sum(mac.stats.mrts_transmissions for mac in net.macs)
            out[cap] = (summary.delivery_ratio, mrts)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nmax-receivers ablation (delivery, MRTS count): {results}")
    assert results[2][0] > 0.95 and results[20][0] > 0.95
    assert results[2][1] >= results[20][1]
