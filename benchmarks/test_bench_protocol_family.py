"""Whole-family comparison on one fixed workload.

Not a paper figure, but the harness output that situates every protocol
this repository implements -- RMAC against the four related reliable
multicast MACs its Section 2 surveys -- on identical placements and
traffic. Asserts the survey's qualitative claims:

* every ARQ protocol with positive per-receiver feedback delivers ~all
  packets on a static network;
* the receiver-initiated variant (MX) cannot certify its deliveries;
* RMAC has the lowest control overhead; LAMM undercuts BMMM; BMW pays
  the most retransmissions.
"""

from repro.experiments.report import format_table
from repro.world.network import ScenarioConfig, build_network

PROTOCOLS = ("rmac", "bmmm", "lamm", "bmw", "lbp", "mx")
BASE = dict(n_nodes=20, width=260, height=160, rate_pps=10, n_packets=60,
            warmup_s=4.0, drain_s=4.0, seed=9)


def test_bench_protocol_family(benchmark):
    def run_all():
        rows = []
        for protocol in PROTOCOLS:
            summary = build_network(
                ScenarioConfig(protocol=protocol, **BASE)
            ).run()
            rows.append({
                "protocol": protocol,
                "delivery": summary.delivery_ratio,
                "delay (ms)": (summary.avg_delay_s or 0) * 1e3,
                "retx": summary.avg_retx_ratio,
                "txoh": summary.avg_txoh_ratio,
                "drops": summary.total_drops,
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Reliable multicast MAC family "
                                   "(static, 20 nodes, 10 pkt/s)"))
    by = {row["protocol"]: row for row in rows}
    # Positive-feedback ARQ protocols all deliver on a static network.
    for protocol in ("rmac", "bmmm", "lamm", "bmw", "lbp"):
        assert by[protocol]["delivery"] > 0.9, protocol
    # RMAC: cheapest control machinery of the reliable protocols.
    for protocol in ("bmmm", "lamm", "bmw"):
        assert by[protocol]["txoh"] > by["rmac"]["txoh"], protocol
    # LAMM's covered RTS phase undercuts BMMM.
    assert by["lamm"]["txoh"] < by["bmmm"]["txoh"]
    # MX cannot certify: no retransmissions despite imperfect delivery.
    assert by["mx"]["delivery"] < 1.0
