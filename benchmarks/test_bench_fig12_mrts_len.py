"""Fig. 12: average / 99-percentile / maximum MRTS lengths (RMAC only).

Paper shape: averages ~41 B (stationary), 99% under 74 B, maxima capped
by the 20-receiver limit (132 B); retransmissions shorten the average
under load and mobility.
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table
from repro.mac.frames import MRTS_FIXED_BYTES


def test_bench_fig12_mrts_lengths(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig12"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 12: Length of MRTS (bytes)"))
    points = by_point(sweep_results)
    for scenario in SCENARIO_NAMES:
        for rate in BENCH_RATES:
            point = points[("rmac", scenario, rate)]
            avg, p99, top = (point["mrts_len_avg"], point["mrts_len_p99"],
                             point["mrts_len_max"])
            assert MRTS_FIXED_BYTES + 6 <= avg <= 74       # short on average
            assert p99 <= 132                              # within the cap
            assert top <= 132                              # 20-receiver cap
            assert avg <= p99 <= top or p99 == top
