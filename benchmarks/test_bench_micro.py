"""Micro-benchmarks: engine throughput and single-transaction latencies.

These are real performance benchmarks (the figure benches above measure
protocol behaviour): how fast the DES core drains events, and how much
wall-clock one reliable multicast transaction costs under each protocol.
"""

from repro.sim.engine import Simulator
from repro.sim.units import MS, US

from repro.core import RmacConfig, RmacProtocol
from repro.mac.bmmm import BmmmProtocol
from repro.mac.dot11 import Dot11Config
from repro.world.testbed import MacTestbed

TRIANGLE = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)]


def test_bench_engine_event_throughput(benchmark):
    """Events per second through the heap (no protocol logic)."""

    def drain():
        sim = Simulator()
        count = 20_000
        for i in range(count):
            sim.at(i, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(drain)
    assert events == 20_000


def _one_rmac_transaction():
    tb = MacTestbed(coords=TRIANGLE, seed=1)
    cfg = RmacConfig(phy=tb.phy)
    tb.build_macs(lambda i, t: RmacProtocol(i, t.sim, t.radios[i], t.node_rng(i), cfg))
    done = []
    tb.macs[0].send_reliable((1, 2), "x", 500, on_complete=done.append)
    tb.run(50 * MS)
    assert done and done[0].acked == (1, 2)
    return tb.sim.events_processed


def _one_bmmm_transaction():
    tb = MacTestbed(coords=TRIANGLE, seed=1)
    cfg = Dot11Config(phy=tb.phy)
    tb.build_macs(lambda i, t: BmmmProtocol(i, t.sim, t.radios[i], t.node_rng(i), cfg))
    done = []
    tb.macs[0].send_reliable((1, 2), "x", 500, on_complete=done.append)
    tb.run(50 * MS)
    assert done and done[0].acked == (1, 2)
    return tb.sim.events_processed


def test_bench_rmac_transaction(benchmark):
    events = benchmark(_one_rmac_transaction)
    assert events > 0


def test_bench_bmmm_transaction(benchmark):
    events = benchmark(_one_bmmm_transaction)
    assert events > 0
