"""Fig. 11: average transmission overhead ratio over non-leaf nodes.

Paper shape: stationary RMAC ~0.16-0.23 vs BMMM ~1.0-1.1 (a ~5x gap);
both rise when mobile, RMAC staying well below BMMM.
"""

from benchmarks.conftest import BENCH_RATES, SCENARIO_NAMES, by_point
from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table


def test_bench_fig11_transmission_overhead(sweep_results, benchmark):
    rows = benchmark.pedantic(
        lambda: figure_rows(FIGURES["fig11"], sweep_results), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Fig. 11: Average Transmission Overhead Ratio"))
    points = by_point(sweep_results)
    for scenario in SCENARIO_NAMES:
        for rate in BENCH_RATES:
            rmac = points[("rmac", scenario, rate)]["avg_txoh_ratio"]
            bmmm = points[("bmmm", scenario, rate)]["avg_txoh_ratio"]
            # The headline gap: MRTS + ABT cost a fraction of 2n control
            # frame pairs. Mobile low-rate points are noisy at 2 seeds, so
            # the per-point check is strict ordering only; the stationary
            # multiplier below enforces the paper's ~5x static gap.
            assert bmmm > rmac, (scenario, rate)
    for rate in BENCH_RATES:
        rmac = points[("rmac", "stationary", rate)]["avg_txoh_ratio"]
        bmmm = points[("bmmm", "stationary", rate)]["avg_txoh_ratio"]
        assert rmac < 0.4          # paper: 0.16-0.23
        assert bmmm > 3 * rmac     # paper: 1.0-1.1 vs 0.2
