"""Fig. 6 / Section 4.1.1: tree topology statistics at full paper scale.

The paper reports, over its 75-node 500 x 300 m placements: average /
99-percentile hops-to-root of 3.87 / 10, and average / 99-percentile
children per non-leaf node of 3.54 / 9. This bench builds the BLESS
fixed-point tree (BFS from node 0) over ten random placements -- the same
count the paper uses -- and checks the statistics land in those ranges.
"""

import random

import numpy as np

from repro.experiments.report import format_table
from repro.net.tree import bfs_tree, tree_statistics
from repro.world.placement import random_placement


def build_stats(n_placements=10):
    rows = []
    for seed in range(n_placements):
        rng = random.Random(1000 + seed)
        coords = random_placement(75, 500, 300, rng, radio_range=75.0)
        stats = tree_statistics(bfs_tree(coords, 75.0))
        stats["seed"] = seed
        rows.append(stats)
    return rows


def test_bench_fig6_tree_statistics(benchmark):
    rows = benchmark.pedantic(build_stats, rounds=1, iterations=1)
    mean = {k: float(np.mean([r[k] for r in rows]))
            for k in ("avg_hops", "p99_hops", "avg_children", "p99_children")}
    print()
    print(format_table(rows, title="Fig. 6 tree statistics (10 placements)"))
    print(f"paper: avg/99p hops = 3.87 / 10 ; avg/99p children = 3.54 / 9")
    print(f"ours : avg/99p hops = {mean['avg_hops']:.2f} / {mean['p99_hops']:.1f} ; "
          f"avg/99p children = {mean['avg_children']:.2f} / {mean['p99_children']:.1f}")
    # Shape check: same ballpark as the paper's numbers. The children
    # average runs lower than the paper's 3.54 because min-hop/min-id
    # parent selection spreads children over more parents than whatever
    # tie-breaking the paper's BLESS implementation used (unspecified);
    # see EXPERIMENTS.md.
    assert 2.5 <= mean["avg_hops"] <= 5.5
    assert 6 <= mean["p99_hops"] <= 13
    assert 1.8 <= mean["avg_children"] <= 5.0
    assert 5 <= mean["p99_children"] <= 12
    # Every tree spans the whole (connected) network.
    assert all(r["reachable"] == 75 for r in rows)
