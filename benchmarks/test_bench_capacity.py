"""Capacity cross-check: the analytic saturation model vs the simulator.

``repro.analysis.capacity`` predicts each protocol's zero-contention
per-hop floor. The simulated network must (a) never beat the floor and
(b) show BMMM's delay knee arriving before RMAC's -- the mechanism behind
Fig. 9's separation.
"""

from repro.analysis.capacity import bmmm_transaction_time, rmac_transaction_time
from repro.experiments.report import format_table
from repro.sim.units import SEC
from repro.world.network import ScenarioConfig, build_network

BASE = dict(n_nodes=16, width=220, height=160, n_packets=60,
            warmup_s=4.0, drain_s=6.0, seed=3)


def test_bench_capacity_floor_vs_simulation(benchmark):
    def run():
        rows = []
        for protocol, model in (("rmac", rmac_transaction_time),
                                ("bmmm", bmmm_transaction_time)):
            floor_ns = model(3, 500)
            for rate in (10, 80):
                summary = build_network(
                    ScenarioConfig(protocol=protocol, rate_pps=rate, **BASE)
                ).run()
                rows.append({
                    "protocol": protocol,
                    "rate": rate,
                    "floor (ms/pkt/hop)": floor_ns / 1e6,
                    "delay (s)": summary.avg_delay_s,
                    "delivery": summary.delivery_ratio,
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Analytic floor vs simulated delay"))
    by = {(r["protocol"], r["rate"]): r for r in rows}
    # Per-packet delay can never beat the single-hop floor.
    for (protocol, rate), row in by.items():
        assert row["delay (s)"] * SEC >= rmac_transaction_time(1, 500) * 0.5
    # The load-induced delay growth is steeper for BMMM (earlier knee).
    rmac_growth = by[("rmac", 80)]["delay (s)"] / by[("rmac", 10)]["delay (s)"]
    bmmm_growth = by[("bmmm", 80)]["delay (s)"] / by[("bmmm", 10)]["delay (s)"]
    assert bmmm_growth > rmac_growth
