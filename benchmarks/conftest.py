"""Shared sweep for the figure benchmarks.

All of Figs. 7-11 plot the same experiment matrix, so the sweep is run
once per benchmark session and shared. Scale (documented per DESIGN.md):

* 40 nodes on a proportionally shrunk plain (paper: 75 on 500 x 300 m),
  so density, contention and tree depth per hop match the paper's;
* 100 packets per run (paper: 10 000), 2 placements (paper: 10);
* rates {10, 60, 120} pkt/s (paper: 8 rates), all three mobility
  scenarios, RMAC vs BMMM.

Absolute confidence intervals are wider than the paper's; the assertions
in each bench check the *shape* (orderings, ranges), and the printed
tables are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scaled_scenario

BENCH_RATES = (10, 60, 120)
BENCH_SEEDS = (1, 2)
BENCH_NODES = 40
BENCH_PACKETS = 100
SCENARIO_NAMES = ("stationary", "speed1", "speed2")


def _make_config(protocol, scenario, rate, seed):
    return scaled_scenario(
        protocol, scenario, rate, seed, n_packets=BENCH_PACKETS, n_nodes=BENCH_NODES
    )


@pytest.fixture(scope="session")
def sweep_results():
    """The shared RMAC-vs-BMMM sweep across scenarios and rates."""
    return run_sweep(
        ["rmac", "bmmm"], list(SCENARIO_NAMES), list(BENCH_RATES),
        list(BENCH_SEEDS), _make_config,
    )


def by_point(results):
    """Index sweep results as {(protocol, scenario, rate): SweepResult}."""
    return {(r.protocol, r.scenario, r.rate_pps): r for r in results}
